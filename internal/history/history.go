// Package history records an operation history and checks it against the
// paper's correctness definitions.
//
// The paper reasons about a history H = (O, ≤) of operations with a
// happened-before partial order (Definition 1). In a single test process we
// obtain a usable refinement of that order from a global sequence counter:
// every journaled event carries a sequence number drawn while the mutating
// peer holds its local critical section, so if op1 finished before op2
// started then seq(op1) < seq(op2). Operations with overlapping [start,end]
// sequence intervals are the concurrent ones.
//
// The journal tracks item placement (Definition 3: an item i is live in H iff
// some peer's Data Store contains it) and query executions, and offers
// checkers for:
//
//   - Correct Query Result (Definition 4): a result must contain every item
//     that satisfied the predicate and was live throughout the query, and
//     only items that satisfied the predicate and were live at some point
//     during the query.
//   - scanRange correctness (Definition 6): the per-peer sub-ranges visited
//     by one scan must be non-overlapping and union exactly to [lb, ub].
//
// The successor-pointer consistency check (Definition 5) lives in the ring
// package, next to the types it inspects.
package history

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/keyspace"
)

// Seq is a point in the global sequence order.
type Seq uint64

// EventKind enumerates journaled Data Store mutations.
type EventKind uint8

// Event kinds. Moved is a single atomic event for an item transfer between
// peers (split/merge/redistribute/revival), so liveness never shows a false
// gap or false overlap mid-transfer. RangeClaimed is an ownership-epoch
// transition: the peer claims (Lo, Hi] at Epoch — journaled at every epoch
// bump site (bootstrap, split, merge, redistribute, failure revival, orphan
// adoption) so the audit can attribute each mutation to exactly one
// ownership incarnation.
const (
	ItemAdded EventKind = iota
	ItemRemoved
	ItemMoved
	PeerFailed
	RangeClaimed
	// Lease lifecycle events (see lease.go for the audit over them). A lease
	// is the time bound on a RangeClaimed incarnation: granted with the claim,
	// renewed by the owner's replication refresh, expired when a neighbor
	// observes the renewal lapse and adopts the range, released when the owner
	// gives the range up voluntarily, handed off when a membership operation
	// transfers part of it to another peer with both sides still live.
	LeaseGranted
	LeaseRenewed
	LeaseExpired
	LeaseReleased
	LeaseHandoff
	// SigRejected marks a refused ownership advert: a replication push or
	// gossiped range advert claiming (Lo, Hi] at Epoch whose signature failed
	// verification. The forged advert never reached the epoch or lease
	// machinery, so the audits ignore these events; they exist so tests can
	// assert a forgery attempt was both refused and recorded.
	SigRejected
)

func (k EventKind) String() string {
	switch k {
	case ItemAdded:
		return "add"
	case ItemRemoved:
		return "remove"
	case ItemMoved:
		return "move"
	case PeerFailed:
		return "fail"
	case RangeClaimed:
		return "claim"
	case LeaseGranted:
		return "lease-grant"
	case LeaseRenewed:
		return "lease-renew"
	case LeaseExpired:
		return "lease-expire"
	case LeaseReleased:
		return "lease-release"
	case LeaseHandoff:
		return "lease-handoff"
	case SigRejected:
		return "sig-reject"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one journaled operation.
type Event struct {
	Seq  Seq
	Kind EventKind
	Key  keyspace.Key
	Peer string // peer performing / holding the item (destination for ItemMoved)
	From string // source peer for ItemMoved; empty otherwise

	// RangeClaimed only: the claimed range and its ownership epoch.
	Lo, Hi keyspace.Key
	Epoch  uint64
	// Recovered marks a claim re-entered from durable storage after a process
	// restart: the same incarnation resuming, not a new epoch.
	Recovered bool
}

// QueryRecord captures one range query execution for later checking.
type QueryRecord struct {
	ID       int
	Interval keyspace.Interval
	Start    Seq
	End      Seq
	Result   []keyspace.Key
}

// Log is a concurrency-safe journal of Data Store operations.
type Log struct {
	mu      sync.Mutex
	nextSeq Seq
	events  []Event
	queries []QueryRecord
	nextQID int
}

// NewLog returns an empty journal.
func NewLog() *Log { return &Log{} }

// next must be called with l.mu held.
func (l *Log) next() Seq {
	l.nextSeq++
	return l.nextSeq
}

// Now returns a fresh sequence point strictly after all journaled events.
func (l *Log) Now() Seq {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next()
}

// Added journals that peer's Data Store now contains key.
func (l *Log) Added(peer string, key keyspace.Key) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: l.next(), Kind: ItemAdded, Key: key, Peer: peer})
}

// Removed journals that peer's Data Store no longer contains key.
func (l *Log) Removed(peer string, key keyspace.Key) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: l.next(), Kind: ItemRemoved, Key: key, Peer: peer})
}

// Moved journals an atomic transfer of key from one peer's Data Store to
// another's. The item stays live across the move.
func (l *Log) Moved(from, to string, key keyspace.Key) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: l.next(), Kind: ItemMoved, Key: key, Peer: to, From: from})
}

// Failed journals a fail-stop of peer: every item it held stops being live.
func (l *Log) Failed(peer string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: l.next(), Kind: PeerFailed, Peer: peer})
}

// Claimed journals an ownership-epoch transition: peer now serves the range
// r at the given epoch. Claims do not affect liveness (items move only via
// Added/Removed/Moved/Failed); they exist so the audit can attribute each
// mutation to exactly one ownership incarnation and check that epochs fence
// correctly (CheckClaims / CheckAddAttribution).
func (l *Log) Claimed(peer string, r keyspace.Range, epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: l.next(), Kind: RangeClaimed, Peer: peer, Lo: r.Lo, Hi: r.Hi, Epoch: epoch})
}

// RecoveredClaim journals a claim re-entered from durable storage: after a
// crash and restart from the same data directory, the peer resumes serving
// the range at the epoch it last claimed — the same incarnation, not a bump.
// The audit treats it like any other claim at that epoch; the Recovered flag
// lets checks and reports distinguish a legal restart from a fresh claim.
func (l *Log) RecoveredClaim(peer string, r keyspace.Range, epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: l.next(), Kind: RangeClaimed, Peer: peer, Lo: r.Lo, Hi: r.Hi, Epoch: epoch, Recovered: true})
}

// LeaseGranted journals that peer's claim of r at epoch carries a fresh
// lease. Granted together with the claim (Log.Claimed precedes it), so every
// leased incarnation pairs a RangeClaimed with a LeaseGranted at the same
// (peer, range, epoch).
func (l *Log) LeaseGranted(peer string, r keyspace.Range, epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: l.next(), Kind: LeaseGranted, Peer: peer, Lo: r.Lo, Hi: r.Hi, Epoch: epoch})
}

// LeaseRenewed journals a renewal of peer's lease on r at epoch: the owner
// proved it is still serving (its replication refresh landed) within the
// lease duration.
func (l *Log) LeaseRenewed(peer string, r keyspace.Range, epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: l.next(), Kind: LeaseRenewed, Peer: peer, Lo: r.Lo, Hi: r.Hi, Epoch: epoch})
}

// LeaseExpired journals that adopter observed holder's lease on r at epoch
// lapse past the lease duration and is about to adopt the range: from this
// event on, holder's live lease is void and an overlapping grant by the
// adopter is justified.
func (l *Log) LeaseExpired(holder, adopter string, r keyspace.Range, epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: l.next(), Kind: LeaseExpired, Peer: holder, From: adopter, Lo: r.Lo, Hi: r.Hi, Epoch: epoch})
}

// LeaseReleased journals that peer voluntarily gave up its lease on r at
// epoch (step-down or merge departure); its live lease is void from here on.
func (l *Log) LeaseReleased(peer string, r keyspace.Range, epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: l.next(), Kind: LeaseReleased, Peer: peer, Lo: r.Lo, Hi: r.Hi, Epoch: epoch})
}

// LeaseHandoff journals that giver is transferring the leased sub-range r to
// recipient with both sides live (split hand-offs journal no handoff — the
// giver's own re-grant shrinks its lease in the same critical section; this
// event covers merge and redistribute transfers, where the recipient's grant
// lands before the giver's release or re-grant reaches the journal). The
// lease audit treats a pending handoff as advance justification for the
// recipient's overlapping grant.
func (l *Log) LeaseHandoff(giver, recipient string, r keyspace.Range, epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: l.next(), Kind: LeaseHandoff, Peer: giver, From: recipient, Lo: r.Lo, Hi: r.Hi, Epoch: epoch})
}

// SigRejected journals a refused ownership advert: verifier received an
// advert claiming owner serves r at epoch, but its signature failed
// verification (missing, malformed, or under a key other than the one pinned
// for owner).
func (l *Log) SigRejected(verifier, owner string, r keyspace.Range, epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: l.next(), Kind: SigRejected, Peer: verifier, From: owner, Lo: r.Lo, Hi: r.Hi, Epoch: epoch})
}

// BeginQuery opens a query record and returns its id and start point.
func (l *Log) BeginQuery(iv keyspace.Interval) (id int, start Seq) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextQID++
	return l.nextQID, l.next()
}

// EndQuery closes a query record with its result.
func (l *Log) EndQuery(id int, iv keyspace.Interval, start Seq, result []keyspace.Key) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := QueryRecord{ID: id, Interval: iv, Start: start, End: l.next()}
	rec.Result = append(rec.Result, result...)
	l.queries = append(l.queries, rec)
}

// Events returns a copy of all journaled events in sequence order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Queries returns a copy of all completed query records.
func (l *Log) Queries() []QueryRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryRecord, len(l.queries))
	copy(out, l.queries)
	return out
}

// Interval is a closed sequence interval during which a condition held.
type Interval struct{ From, To Seq }

// maxSeq marks a condition that still holds at the end of the journal.
const maxSeq = Seq(^uint64(0))

// Liveness reconstructs, for each key, the sequence intervals during which
// the key was live (held by at least one peer, Definition 3).
type Liveness struct {
	intervals map[keyspace.Key][]Interval
}

// BuildLiveness replays the journal into per-key liveness timelines.
//
// A peer that failed stays failed forever (the paper's fail-stop model; the
// system never reuses a peer identifier), so events attributing an item to
// an already-failed peer are void. Such events are real: a handler that was
// mid-flight when its peer was killed can journal its Added after the
// journal recorded the PeerFailed — the mutation physically happened, but on
// a peer that is already dead, so the item is not live. Without this rule a
// single unlucky kill would leave a phantom item "live" forever and every
// later query would be flagged as missing it.
func BuildLiveness(events []Event) *Liveness {
	type holding map[string]int // peer -> copies held (should be 0/1)
	holders := make(map[keyspace.Key]holding)
	lv := &Liveness{intervals: make(map[keyspace.Key][]Interval)}
	count := make(map[keyspace.Key]int)
	failed := make(map[string]bool) // peers that fail-stopped

	open := make(map[keyspace.Key]Seq) // key -> seq at which current live interval opened

	adjust := func(key keyspace.Key, seq Seq, delta int) {
		before := count[key]
		count[key] = before + delta
		switch {
		case before == 0 && count[key] > 0:
			open[key] = seq
		case before > 0 && count[key] <= 0:
			lv.intervals[key] = append(lv.intervals[key], Interval{From: open[key], To: seq})
			delete(open, key)
		}
	}

	for _, ev := range events {
		switch ev.Kind {
		case ItemAdded:
			if failed[ev.Peer] {
				continue // a dead peer's store holds nothing
			}
			h := holders[ev.Key]
			if h == nil {
				h = make(holding)
				holders[ev.Key] = h
			}
			if h[ev.Peer] == 0 {
				h[ev.Peer] = 1
				adjust(ev.Key, ev.Seq, 1)
			}
		case ItemRemoved:
			if h := holders[ev.Key]; h != nil && h[ev.Peer] > 0 {
				h[ev.Peer] = 0
				adjust(ev.Key, ev.Seq, -1)
			}
		case ItemMoved:
			h := holders[ev.Key]
			if h == nil {
				h = make(holding)
				holders[ev.Key] = h
			}
			// Atomic: destination gains before source loses, net count never
			// dips to zero during a move. A move to an already-failed peer
			// only loses the source copy: the destination is dead.
			if h[ev.Peer] == 0 && !failed[ev.Peer] {
				h[ev.Peer] = 1
				adjust(ev.Key, ev.Seq, 1)
			}
			if h[ev.From] > 0 {
				h[ev.From] = 0
				adjust(ev.Key, ev.Seq, -1)
			}
		case PeerFailed:
			failed[ev.Peer] = true
			for key, h := range holders {
				if h[ev.Peer] > 0 {
					h[ev.Peer] = 0
					adjust(key, ev.Seq, -1)
				}
			}
		}
	}
	for key, from := range open {
		lv.intervals[key] = append(lv.intervals[key], Interval{From: from, To: maxSeq})
	}
	return lv
}

// Keys returns every key that was ever live, in ascending order.
func (lv *Liveness) Keys() []keyspace.Key {
	out := make([]keyspace.Key, 0, len(lv.intervals))
	for k := range lv.intervals {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LiveAtSomePoint reports whether key was live at any sequence point in
// [from, to].
func (lv *Liveness) LiveAtSomePoint(key keyspace.Key, from, to Seq) bool {
	for _, iv := range lv.intervals[key] {
		if iv.From <= to && from <= iv.To {
			return true
		}
	}
	return false
}

// LiveThroughout reports whether key was live at every sequence point in
// [from, to].
func (lv *Liveness) LiveThroughout(key keyspace.Key, from, to Seq) bool {
	for _, iv := range lv.intervals[key] {
		if iv.From <= from && to <= iv.To {
			return true
		}
	}
	return false
}

// Violation describes one failure of a correctness check.
type Violation struct {
	QueryID int
	Key     keyspace.Key
	Reason  string
}

func (v Violation) String() string {
	return fmt.Sprintf("query %d key %d: %s", v.QueryID, v.Key, v.Reason)
}

// CheckQueryResult checks one query record against Definition 4 using the
// supplied liveness reconstruction. It returns all violations found.
func CheckQueryResult(lv *Liveness, q QueryRecord) []Violation {
	var out []Violation
	inResult := make(map[keyspace.Key]bool, len(q.Result))
	for _, k := range q.Result {
		if inResult[k] {
			out = append(out, Violation{QueryID: q.ID, Key: k, Reason: "duplicate item in result"})
		}
		inResult[k] = true
		if !q.Interval.Contains(k) {
			out = append(out, Violation{QueryID: q.ID, Key: k, Reason: "result item does not satisfy the predicate"})
			continue
		}
		if !lv.LiveAtSomePoint(k, q.Start, q.End) {
			out = append(out, Violation{QueryID: q.ID, Key: k, Reason: "result item was never live during the query"})
		}
	}
	for _, k := range lv.Keys() {
		if !q.Interval.Contains(k) || inResult[k] {
			continue
		}
		if lv.LiveThroughout(k, q.Start, q.End) {
			out = append(out, Violation{QueryID: q.ID, Key: k, Reason: "item live throughout the query is missing from the result"})
		}
	}
	return out
}

// CheckAllQueries replays the journal once and checks every completed query.
func (l *Log) CheckAllQueries() []Violation {
	lv := BuildLiveness(l.Events())
	var out []Violation
	for _, q := range l.Queries() {
		out = append(out, CheckQueryResult(lv, q)...)
	}
	return out
}

// ScanPiece is one handler invocation of a scanRange: the peer visited and
// the sub-interval it served.
type ScanPiece struct {
	Peer     string
	Interval keyspace.Interval
}

// CheckScanCover checks Definition 6 conditions (3) and (4) for one completed
// scan: the visited pieces must be pairwise non-overlapping and their union
// must be exactly the scanned interval. (Conditions (1) and (2) are enforced
// structurally by the scan implementation: the init operation precedes the
// completion, and each piece is computed under the visited peer's range lock
// as a subset of its range.)
func CheckScanCover(scanned keyspace.Interval, pieces []ScanPiece) error {
	if len(pieces) == 0 {
		return fmt.Errorf("scan of %v visited no peers", scanned)
	}
	sorted := make([]ScanPiece, len(pieces))
	copy(sorted, pieces)
	sort.Slice(sorted, func(i, j int) bool {
		return firstKey(sorted[i].Interval) < firstKey(sorted[j].Interval)
	})
	cursor := firstKey(scanned)
	for i, p := range sorted {
		if !p.Interval.Valid() {
			return fmt.Errorf("scan of %v: piece %d at %s is empty (%v)", scanned, i, p.Peer, p.Interval)
		}
		f := firstKey(p.Interval)
		if f < cursor {
			return fmt.Errorf("scan of %v: piece %v at %s overlaps prior coverage (cursor %d)", scanned, p.Interval, p.Peer, cursor)
		}
		if f > cursor {
			return fmt.Errorf("scan of %v: gap before piece %v at %s (cursor %d)", scanned, p.Interval, p.Peer, cursor)
		}
		last := lastKey(p.Interval)
		if last == keyspace.MaxKey {
			cursor = keyspace.MaxKey
			if i != len(sorted)-1 {
				return fmt.Errorf("scan of %v: piece at %s reaches MaxKey but pieces remain", scanned, p.Peer)
			}
			break
		}
		cursor = last + 1
	}
	wantEnd := lastKey(scanned)
	if cursor == keyspace.MaxKey {
		if wantEnd != keyspace.MaxKey {
			return fmt.Errorf("scan of %v: coverage overshoots to MaxKey", scanned)
		}
		return nil
	}
	if cursor != wantEnd+1 {
		return fmt.Errorf("scan of %v: coverage ends at %d, want through %d", scanned, cursor-1, wantEnd)
	}
	return nil
}

// firstKey returns the smallest key satisfying iv (which must be Valid).
func firstKey(iv keyspace.Interval) keyspace.Key {
	if iv.LbOpen {
		return iv.Lb + 1
	}
	return iv.Lb
}

// lastKey returns the largest key satisfying iv (which must be Valid).
func lastKey(iv keyspace.Interval) keyspace.Key {
	if iv.UbOpen {
		return iv.Ub - 1
	}
	return iv.Ub
}
