package history

import (
	"testing"
	"testing/quick"
)

func op(id string, start, end Seq) Op { return Op{ID: id, Start: start, End: end} }

func TestHappenedBefore(t *testing.T) {
	a := op("a", 1, 2)
	b := op("b", 3, 4)
	c := op("c", 2, 5) // overlaps both

	if !HappenedBefore(a, b) {
		t.Error("a < b expected")
	}
	if HappenedBefore(b, a) {
		t.Error("b < a unexpected")
	}
	if HappenedBefore(a, c) || HappenedBefore(c, a) {
		t.Error("a and c overlap: neither precedes")
	}
	if !Concurrent(a, c) || !Concurrent(c, b) {
		t.Error("overlapping operations must be concurrent")
	}
	if Concurrent(a, b) {
		t.Error("disjoint ordered operations are not concurrent")
	}
}

func TestOrderedIsPartialOrderShape(t *testing.T) {
	// Property: happened-before is transitive and antisymmetric over random
	// interval triples.
	f := func(s1, d1, s2, d2, s3, d3 uint8) bool {
		a := op("a", Seq(s1), Seq(s1)+Seq(d1))
		b := op("b", Seq(s2), Seq(s2)+Seq(d2))
		c := op("c", Seq(s3), Seq(s3)+Seq(d3))
		// antisymmetry
		if HappenedBefore(a, b) && HappenedBefore(b, a) {
			return false
		}
		// transitivity
		if HappenedBefore(a, b) && HappenedBefore(b, c) && !HappenedBefore(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestTruncate(t *testing.T) {
	a := op("a", 1, 2)
	b := op("b", 3, 4)
	c := op("c", 2, 5)
	d := op("d", 6, 7)
	h := History{Ops: []Op{a, b, c, d}}

	hb := h.Truncate(b)
	// H_b contains b itself and everything that happened before b: a.
	if len(hb.Ops) != 2 || hb.Ops[0] != a || hb.Ops[1] != b {
		t.Errorf("Truncate(b) = %v", hb.Ops)
	}
	hd := h.Truncate(d)
	if len(hd.Ops) != 4 {
		t.Errorf("Truncate(d) should contain everything, got %v", hd.Ops)
	}
}

func TestProject(t *testing.T) {
	a := op("add:p1:5", 1, 1)
	b := op("remove:p1:5", 2, 2)
	c := op("add:p2:9", 3, 3)
	h := History{Ops: []Op{a, b, c}}
	p := h.Project(func(o Op) bool { return o.ID[0] == 'a' })
	if len(p.Ops) != 2 || p.Ops[0] != a || p.Ops[1] != c {
		t.Errorf("projection = %v", p.Ops)
	}
}

func TestOpsOfJournal(t *testing.T) {
	l := NewLog()
	l.Added("p1", 5)
	l.Moved("p1", "p2", 5)
	l.Failed("p2")
	ops := OpsOf(l.Events())
	if len(ops) != 3 {
		t.Fatalf("ops = %v", ops)
	}
	if ops[0].ID != "add:p1:5" {
		t.Errorf("op0 id = %s", ops[0].ID)
	}
	if ops[1].ID != "move:p1->p2:5" {
		t.Errorf("op1 id = %s", ops[1].ID)
	}
	if ops[2].ID != "fail:p2" {
		t.Errorf("op2 id = %s", ops[2].ID)
	}
	// Journal events are totally ordered.
	for i := 1; i < len(ops); i++ {
		if !HappenedBefore(ops[i-1], ops[i]) {
			t.Errorf("journal ops %d and %d not ordered", i-1, i)
		}
	}
}

func TestTruncateOfJournalMatchesLiveness(t *testing.T) {
	// For any journaled event o, liveness computed on the truncated history
	// equals liveness computed on the event prefix — Definition 3 applied to
	// H_o.
	l := NewLog()
	l.Added("p1", 10)
	l.Added("p2", 20)
	l.Removed("p1", 10)
	evs := l.Events()
	ops := OpsOf(evs)
	h := History{Ops: ops}

	for i, o := range ops {
		trunc := h.Truncate(o)
		if len(trunc.Ops) != i+1 {
			t.Fatalf("journal truncation at %d = %d ops", i, len(trunc.Ops))
		}
		lv := BuildLiveness(evs[:i+1])
		at := evs[i].Seq
		switch i {
		case 0:
			if !lv.LiveAtSomePoint(10, at, at) {
				t.Error("10 live after its add")
			}
		case 2:
			// Liveness intervals are closed at the ending event's own seq;
			// strictly after it the item is dead.
			if lv.LiveAtSomePoint(10, at+1, at+1) {
				t.Error("10 dead after its remove")
			}
			if !lv.LiveAtSomePoint(20, at, at) {
				t.Error("20 still live")
			}
		}
	}
}
