package history

import (
	"strings"
	"testing"

	"repro/internal/keyspace"
)

// Two peers granted live leases over overlapping ranges, with nothing in the
// journal voiding the first, is exactly the dual-lease window CheckLeases
// exists to catch.
func TestCheckLeasesFlagsOverlappingGrants(t *testing.T) {
	l := NewLog()
	l.LeaseGranted("a", keyspace.Range{Lo: 0, Hi: 100}, 1)
	l.LeaseGranted("b", keyspace.Range{Lo: 50, Hi: 150}, 1)
	vs := l.CheckLeases()
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly one", vs)
	}
	if !strings.Contains(vs[0].String(), "unexpired lease") {
		t.Fatalf("unexpected violation text: %s", vs[0])
	}
}

// An adoption journals LeaseExpired for the lapsed holder before the
// adopter's overlapping grant: the voided lease makes the grant legal.
func TestCheckLeasesExpiryJustifiesAdoption(t *testing.T) {
	l := NewLog()
	l.LeaseGranted("owner", keyspace.Range{Lo: 0, Hi: 100}, 3)
	l.LeaseExpired("owner", "adopter", keyspace.Range{Lo: 0, Hi: 100}, 3)
	l.LeaseGranted("adopter", keyspace.Range{Lo: 0, Hi: 100}, 4)
	if vs := l.CheckLeases(); len(vs) != 0 {
		t.Fatalf("violations = %v, want none", vs)
	}
}

// An expiry observed at a LOWER epoch than the holder's current lease must
// not void it: the holder re-claimed past the observation, and an adopter
// acting on the stale expiry is flagged.
func TestCheckLeasesStaleExpiryDoesNotVoid(t *testing.T) {
	l := NewLog()
	l.LeaseGranted("owner", keyspace.Range{Lo: 0, Hi: 100}, 5)
	l.LeaseExpired("owner", "adopter", keyspace.Range{Lo: 0, Hi: 100}, 3)
	l.LeaseGranted("adopter", keyspace.Range{Lo: 0, Hi: 100}, 6)
	if vs := l.CheckLeases(); len(vs) != 1 {
		t.Fatalf("violations = %v, want the stale adoption flagged", vs)
	}
}

// A pending handoff from the live holder to the grantee, covering the
// holder's whole leased range, justifies the grantee's overlapping grant (a
// merge: the giver announces, the recipient extends).
func TestCheckLeasesHandoffJustifiesMergeGrant(t *testing.T) {
	l := NewLog()
	l.LeaseGranted("giver", keyspace.Range{Lo: 0, Hi: 100}, 2)
	l.LeaseGranted("succ", keyspace.Range{Lo: 100, Hi: 200}, 1)
	l.LeaseHandoff("giver", "succ", keyspace.Range{Lo: 0, Hi: 100}, 2)
	l.LeaseGranted("succ", keyspace.Range{Lo: 0, Hi: 200}, 2)
	if vs := l.CheckLeases(); len(vs) != 0 {
		t.Fatalf("violations = %v, want none", vs)
	}
}

// A handoff is consumable once: a second overlapping grant with no fresh
// justification is flagged.
func TestCheckLeasesHandoffConsumedOnce(t *testing.T) {
	l := NewLog()
	l.LeaseGranted("giver", keyspace.Range{Lo: 0, Hi: 100}, 2)
	l.LeaseHandoff("giver", "succ", keyspace.Range{Lo: 0, Hi: 100}, 2)
	l.LeaseGranted("succ", keyspace.Range{Lo: 0, Hi: 100}, 2)  // consumes the handoff, voiding the giver
	l.LeaseReleased("succ", keyspace.Range{Lo: 0, Hi: 100}, 2) // and gives the range back up
	l.LeaseGranted("giver", keyspace.Range{Lo: 0, Hi: 100}, 9) // legal: succ's lease is voided
	l.LeaseGranted("succ", keyspace.Range{Lo: 0, Hi: 100}, 10) // overlaps the giver again, no handoff left
	vs := l.CheckLeases()
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly one (the second overlap)", vs)
	}
}

// A same-peer re-grant supersedes that peer's own earlier lease (splits and
// redistributes shrink in place), and releases/failures void a lease for
// later grants by others.
func TestCheckLeasesSupersedeReleaseAndFailure(t *testing.T) {
	l := NewLog()
	l.LeaseGranted("a", keyspace.Range{Lo: 0, Hi: 200}, 1)
	l.LeaseGranted("a", keyspace.Range{Lo: 0, Hi: 100}, 2) // shrink in place: no violation
	l.LeaseGranted("b", keyspace.Range{Lo: 100, Hi: 200}, 1)
	l.LeaseReleased("b", keyspace.Range{Lo: 100, Hi: 200}, 1)
	l.LeaseGranted("c", keyspace.Range{Lo: 100, Hi: 200}, 2) // released: legal
	l.Failed("a")
	l.LeaseGranted("d", keyspace.Range{Lo: 0, Hi: 100}, 3) // holder failed: legal
	if vs := l.CheckLeases(); len(vs) != 0 {
		t.Fatalf("violations = %v, want none", vs)
	}
}

// Renewals carry no replay state: renewing a voided lease is void, not a
// violation, and a journal with no lease events passes trivially.
func TestCheckLeasesRenewalsAndEmptyJournal(t *testing.T) {
	if vs := NewLog().CheckLeases(); len(vs) != 0 {
		t.Fatalf("empty journal violations = %v", vs)
	}
	l := NewLog()
	l.LeaseGranted("a", keyspace.Range{Lo: 0, Hi: 100}, 1)
	l.LeaseExpired("a", "b", keyspace.Range{Lo: 0, Hi: 100}, 1)
	l.LeaseRenewed("a", keyspace.Range{Lo: 0, Hi: 100}, 1) // lapsed owner's refresh racing its adoption
	l.LeaseGranted("b", keyspace.Range{Lo: 0, Hi: 100}, 2)
	if vs := l.CheckLeases(); len(vs) != 0 {
		t.Fatalf("violations = %v, want none", vs)
	}
}
