package simnet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastConfig removes latency so unit tests run instantly.
func fastConfig() Config {
	return Config{DeadCallDelay: time.Millisecond, Seed: 1}
}

func echoHandler(from Addr, method string, payload any) (any, error) {
	return payload, nil
}

func TestRegisterAndCall(t *testing.T) {
	n := New(fastConfig())
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler); err != nil {
		t.Fatal(err)
	}
	resp, err := n.Call(context.Background(), "a", "b", "echo", 42)
	if err != nil {
		t.Fatal(err)
	}
	if resp != 42 {
		t.Errorf("resp = %v, want 42", resp)
	}
}

func TestDuplicateRegister(t *testing.T) {
	n := New(fastConfig())
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("a", echoHandler); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v, want ErrDuplicate", err)
	}
}

func TestNilHandlerRejected(t *testing.T) {
	n := New(fastConfig())
	if err := n.Register("a", nil); err == nil {
		t.Error("nil handler must be rejected")
	}
}

func TestCallToDeadPeer(t *testing.T) {
	n := New(fastConfig())
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler); err != nil {
		t.Fatal(err)
	}
	n.Kill("b")
	start := time.Now()
	_, err := n.Call(context.Background(), "a", "b", "echo", 1)
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Errorf("dead call returned in %v, want >= DeadCallDelay", elapsed)
	}
}

func TestCallToUnknownPeer(t *testing.T) {
	n := New(fastConfig())
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Call(context.Background(), "a", "ghost", "echo", 1); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestDeadSenderCannotCall(t *testing.T) {
	n := New(fastConfig())
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler); err != nil {
		t.Fatal(err)
	}
	n.Kill("a")
	if _, err := n.Call(context.Background(), "a", "b", "echo", 1); !errors.Is(err, ErrSenderDead) {
		t.Errorf("err = %v, want ErrSenderDead", err)
	}
}

func TestReviveAfterKill(t *testing.T) {
	n := New(fastConfig())
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler); err != nil {
		t.Fatal(err)
	}
	n.Kill("b")
	if err := n.Register("b", echoHandler); err != nil {
		t.Fatalf("re-registering a dead peer should revive it: %v", err)
	}
	if _, err := n.Call(context.Background(), "a", "b", "echo", 1); err != nil {
		t.Errorf("call after revive failed: %v", err)
	}
}

func TestHandlerError(t *testing.T) {
	n := New(fastConfig())
	boom := errors.New("boom")
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", func(Addr, string, any) (any, error) { return nil, boom }); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestSendAsync(t *testing.T) {
	n := New(fastConfig())
	var got atomic.Int64
	done := make(chan struct{})
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	err := n.Register("b", func(from Addr, method string, payload any) (any, error) {
		got.Store(int64(payload.(int)))
		close(done)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Send("a", "b", "notify", 7)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("send never delivered")
	}
	if got.Load() != 7 {
		t.Errorf("payload = %d, want 7", got.Load())
	}
}

func TestSendToDeadPeerSilent(t *testing.T) {
	n := New(fastConfig())
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	n.Send("a", "ghost", "notify", 1) // must not panic
	time.Sleep(5 * time.Millisecond)
	if f := n.Stats().Failures; f == 0 {
		t.Error("failed send should be counted")
	}
}

func TestCallContextCancellation(t *testing.T) {
	cfg := fastConfig()
	cfg.DeadCallDelay = time.Minute // would block forever without ctx
	n := New(cfg)
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.Call(ctx, "a", "ghost", "echo", 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("context cancellation did not interrupt the dead-call delay")
	}
}

func TestLatencyApplied(t *testing.T) {
	cfg := Config{MinLatency: 2 * time.Millisecond, MaxLatency: 3 * time.Millisecond, DeadCallDelay: time.Millisecond, Seed: 1}
	n := New(cfg)
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := n.Call(context.Background(), "a", "b", "echo", 1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("round trip took %v, want >= 2x min latency", elapsed)
	}
}

func TestStatsCounting(t *testing.T) {
	n := New(fastConfig())
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := n.Call(context.Background(), "a", "b", "ping", nil); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.Calls != 5 {
		t.Errorf("Calls = %d, want 5", st.Calls)
	}
	if st.ByMethod["ping"] != 5 {
		t.Errorf("ByMethod[ping] = %d, want 5", st.ByMethod["ping"])
	}
}

func TestConcurrentTraffic(t *testing.T) {
	n := New(fastConfig())
	const peers = 16
	for i := 0; i < peers; i++ {
		addr := Addr(fmt.Sprintf("p%d", i))
		if err := n.Register(addr, echoHandler); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, peers*100)
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from := Addr(fmt.Sprintf("p%d", i))
			for j := 0; j < 100; j++ {
				to := Addr(fmt.Sprintf("p%d", (i+j)%peers))
				if _, err := n.Call(context.Background(), from, to, "echo", j); err != nil {
					errs <- err
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := n.Stats().Calls; got != peers*100 {
		t.Errorf("Calls = %d, want %d", got, peers*100)
	}
}

func TestKillDuringProcessingLosesResponse(t *testing.T) {
	n := New(fastConfig())
	if err := n.Register("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	proceed := make(chan struct{})
	err := n.Register("b", func(Addr, string, any) (any, error) {
		close(started)
		<-proceed
		return "late", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-started
		n.Kill("b")
		close(proceed)
	}()
	_, err = n.Call(context.Background(), "a", "b", "slow", nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable when destination dies mid-call", err)
	}
}
