package simnet

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// A DisconnectFault mid-transfer models a connection loss, not a transfer
// failure: the chunks staged so far survive, CallBulk resumes from the
// high-water mark, and the committed payload is byte-exact. Only the dropped
// chunk is retransmitted.
func TestDisconnectFaultResumesFromHighWaterMark(t *testing.T) {
	var arm atomic.Bool
	cfg := Config{
		DeadCallDelay: time.Millisecond,
		Seed:          3,
		ChunkBytes:    1024,
		DisconnectFault: func(_ Addr, method string, seq int) bool {
			// One-shot: the first rep.push chunk 2 loses its connection.
			return method == "rep.push" && seq == 2 && arm.CompareAndSwap(true, false)
		},
	}
	n := New(cfg)
	var got atomic.Value
	if err := n.Register("rcv", func(_ Addr, _ string, p any) (any, error) {
		got.Store(p)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("snd", func(Addr, string, any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}

	want := streamPattern(8 * 1024)
	payload := chunkedPayload{Data: want}
	body, err := transport.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	wantChunks := (len(body) + cfg.ChunkBytes - 1) / cfg.ChunkBytes

	arm.Store(true)
	resp, err := transport.CallBulk(n, context.Background(), "snd", "rcv", "rep.push", payload)
	if err != nil {
		t.Fatalf("bulk call across the connection loss: %v", err)
	}
	if ok, _ := resp.(bool); !ok {
		t.Fatalf("bulk response = %v, want true", resp)
	}
	cp, ok := got.Load().(chunkedPayload)
	if !ok {
		t.Fatalf("handler payload type %T", got.Load())
	}
	if !bytes.Equal(cp.Data, want) {
		t.Fatal("resumed payload corrupted in flight")
	}

	st := n.Stats()
	if st.DisconnectDrops != 1 {
		t.Fatalf("DisconnectDrops = %d, want 1", st.DisconnectDrops)
	}
	if st.StreamResumes != 1 {
		t.Fatalf("StreamResumes = %d, want 1", st.StreamResumes)
	}
	if st.ChunkDrops != 0 {
		t.Fatalf("ChunkDrops = %d, want 0 (a connection loss is not a chunk drop)", st.ChunkDrops)
	}
	// The dropped chunk is the only one retransmitted: total chunk frames are
	// the transfer's chunk count plus exactly one retry.
	if st.Chunks != uint64(wantChunks)+1 {
		t.Fatalf("Chunks = %d, want %d (%d chunks + 1 retransmit)", st.Chunks, wantChunks+1, wantChunks)
	}
}

// An AuthFault refusal is prompt and typed: the caller gets
// transport.ErrUnauthenticated without waiting out the dead-call delay, so a
// policy refusal can never be mistaken for a fail-stopped peer.
func TestAuthFaultRefusesPromptlyAndTyped(t *testing.T) {
	cfg := Config{
		DeadCallDelay: 500 * time.Millisecond, // long on purpose: rejects must not wait it out
		Seed:          1,
		AuthFault: func(_, to Addr) bool {
			return to == "locked"
		},
	}
	n := New(cfg)
	for _, a := range []Addr{"locked", "open", "snd"} {
		if err := n.Register(a, func(Addr, string, any) (any, error) { return true, nil }); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	_, err := n.Call(context.Background(), "snd", "locked", "m", int64(1))
	if !errors.Is(err, transport.ErrUnauthenticated) {
		t.Fatalf("call to locked peer: err = %v, want ErrUnauthenticated", err)
	}
	if errors.Is(err, ErrUnreachable) {
		t.Fatal("auth refusal read as ErrUnreachable: callers would treat a policy failure as a fail-stop")
	}
	if elapsed := time.Since(start); elapsed >= cfg.DeadCallDelay {
		t.Fatalf("auth refusal took %v, want < the %v dead-call delay", elapsed, cfg.DeadCallDelay)
	}

	if _, err := n.OpenStream(context.Background(), "snd", "locked", "m"); !errors.Is(err, transport.ErrUnauthenticated) {
		t.Fatalf("stream to locked peer: err = %v, want ErrUnauthenticated", err)
	}

	// The same sender still reaches unlocked peers.
	if _, err := n.Call(context.Background(), "snd", "open", "m", int64(1)); err != nil {
		t.Fatalf("call to open peer: %v", err)
	}

	// A Send is silently dropped and counted.
	n.Send("snd", "locked", "m", int64(1))
	deadline := time.Now().Add(2 * time.Second)
	for n.Stats().AuthRejects < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := n.Stats().AuthRejects; got != 3 {
		t.Fatalf("AuthRejects = %d, want 3 (call + stream + send)", got)
	}
}
