// Package simnet provides the in-memory implementation of the transport
// contract: an in-process message network connecting simulated peers.
//
// The paper's evaluation ran 30 concurrent peer processes on a LAN cluster
// (Section 6.1) and assumes "some underlying network protocol that can be
// used to send messages reliably from one peer to another with known bounded
// delay" with fail-stop peer failures (Section 2.1). simnet reproduces that
// contract in one process, implementing transport.Transport:
//
//   - every peer registers an endpoint with a request handler;
//   - Call performs a synchronous request/response with a configurable,
//     uniformly sampled propagation delay in each direction;
//   - Send performs an asynchronous one-way message;
//   - Kill fail-stops a peer: its handler stops being invoked, and calls to
//     it time out after the configured dead-call delay, exactly how a live
//     peer observes a failed one ("no response" in Algorithm 14).
//
// With Config.StrictSerialization set, every payload and response is pushed
// through the wire codec (transport.Encode/Decode) instead of being handed
// over by reference. Handlers then observe exactly the deep copy a real
// network hop would deliver, so tests catch unregistered message types,
// unencodable fields and accidental sharing of mutable state long before the
// TCP transport does.
//
// All delays scale with Config values, so experiments can run the paper's
// second-scale parameters at millisecond scale (see EXPERIMENTS.md).
package simnet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Addr identifies a peer on the network (the paper's "physical id").
type Addr = transport.Addr

// Handler processes one incoming request at a peer and returns a response.
// Handlers run concurrently; implementations must be safe for concurrent use.
type Handler = transport.Handler

// Mux dispatches per-method handlers for one peer; see transport.Mux.
type Mux = transport.Mux

// NewMux returns an empty dispatcher.
func NewMux() *Mux { return transport.NewMux() }

// Errors returned by network operations, shared with every other transport
// implementation so callers can errors.Is regardless of substrate.
var (
	ErrUnreachable = transport.ErrUnreachable
	ErrSenderDead  = transport.ErrSenderDead
	ErrDuplicate   = transport.ErrDuplicate
)

// Config controls network timing.
type Config struct {
	// MinLatency and MaxLatency bound the uniformly sampled one-way
	// propagation delay. Zero values mean instantaneous delivery.
	MinLatency, MaxLatency time.Duration
	// DeadCallDelay is how long a Call to a failed or unknown peer blocks
	// before reporting ErrUnreachable, modelling an RPC timeout.
	DeadCallDelay time.Duration
	// Seed initializes the latency sampler; zero means a fixed default.
	Seed int64
	// StrictSerialization routes every payload and response through the wire
	// codec, delivering a deep copy: what a real network hop produces. A
	// payload that cannot be encoded fails the Call (or silently drops the
	// Send, counted in Stats.StrictFailures and retained by StrictErr).
	StrictSerialization bool
	// ChunkBytes is the chunk size for streamed bulk transfers (OpenStream).
	// Default transport.DefaultChunkBytes.
	ChunkBytes int
	// ChunkFault, when set, is consulted for every chunk frame of every
	// streamed transfer (fault injection): returning true drops that chunk
	// on the floor, which tears the whole transfer down — the sender's
	// stream fails, the receiver discards everything staged and its handler
	// never runs. seq is the zero-based chunk sequence number within the
	// transfer.
	ChunkFault func(to Addr, method string, seq int) bool
	// SuspectFault, when set, is consulted for every Call, Send and
	// OpenStream (fault
	// injection): returning true makes the destination appear failed for
	// that one message — the caller blocks for DeadCallDelay and reports
	// ErrUnreachable (a Send is silently dropped) — while the destination
	// stays alive and keeps serving everyone else. This is deterministic
	// false-positive failure detection: aim it at ring.ping traffic toward a
	// live peer and the ring's failure detector wrongly declares that peer
	// dead while its datastore keeps serving, reproducing the dual-claim
	// ownership window that epoch fencing exists to close.
	SuspectFault func(from, to Addr, method string) bool
	// PartitionFault, when set, is consulted for every Call, Send and
	// OpenStream (fault injection): returning true severs the (from, to)
	// link for that message — the caller fails immediately with
	// ErrUnreachable (no DeadCallDelay: a partition refuses, it does not
	// time out), a Send is silently dropped, a stream fails to open. Both
	// endpoints stay alive. Unlike SuspectFault it is meant to be aimed at
	// whole peer pairs regardless of method, modelling a network partition:
	// gossip convergence tests cut the cluster in half, let the directory
	// diverge, then heal the cut and assert agreement within N rounds.
	PartitionFault func(from, to Addr) bool
	// DisconnectFault, when set, is consulted for every chunk frame of every
	// streamed transfer (fault injection): returning true drops that chunk
	// as a CONNECTION loss rather than a transfer failure. The sender's
	// stream reports ErrUnreachable for that chunk, but — unlike ChunkFault —
	// the chunks staged so far survive (the in-process twin of a real
	// receiver parking its staged state across connections) and the stream
	// is resumable: transport.CallBulk asks for the high-water mark and
	// continues from it, so only the dropped chunk is retransmitted.
	DisconnectFault func(to Addr, method string, seq int) bool
	// AuthFault, when set, is consulted for every Call, Send and OpenStream
	// (fault injection): returning true models an authentication-handshake
	// refusal on the (from, to) link — the operation fails immediately with
	// transport.ErrUnauthenticated (a Send is silently dropped). There is
	// deliberately no dead-call delay: a policy refusal answers promptly, it
	// does not time out, and callers must not mistake it for a fail-stop.
	AuthFault func(from, to Addr) bool
}

// DefaultConfig returns timing suited to millisecond-scale experiments.
func DefaultConfig() Config {
	return Config{
		MinLatency:    200 * time.Microsecond,
		MaxLatency:    800 * time.Microsecond,
		DeadCallDelay: 5 * time.Millisecond,
		Seed:          1,
	}
}

// Stats aggregates network traffic counters.
type Stats struct {
	Calls           uint64 // synchronous request/responses attempted
	Sends           uint64 // one-way messages attempted
	Streams         uint64 // chunked transfers opened
	Chunks          uint64 // chunk frames carried by streamed transfers
	ChunkDrops      uint64 // chunk frames dropped by fault injection
	SuspectDrops    uint64 // calls/sends dropped by SuspectFault injection
	PartitionDrops  uint64 // calls/sends/streams severed by PartitionFault injection
	DisconnectDrops uint64 // chunk frames lost to DisconnectFault connection losses
	StreamResumes   uint64 // streamed transfers resumed from their high-water mark
	AuthRejects     uint64 // calls/sends/streams refused by AuthFault injection
	Failures        uint64 // calls/sends that could not be delivered
	StrictFailures  uint64 // messages rejected by the codec in strict mode
	ByMethod        map[string]uint64
}

// Network is an in-process message network implementing transport.Transport.
// The zero value is not usable; construct with New.
type Network struct {
	cfg Config

	mu     sync.RWMutex
	peers  map[Addr]*endpoint
	closed bool

	rngMu sync.Mutex
	rng   *rand.Rand

	calls           atomic.Uint64
	sends           atomic.Uint64
	streams         atomic.Uint64
	chunks          atomic.Uint64
	chunkDrops      atomic.Uint64
	suspectDrops    atomic.Uint64
	partitionDrops  atomic.Uint64
	disconnectDrops atomic.Uint64
	streamResumes   atomic.Uint64
	authRejects     atomic.Uint64
	failures        atomic.Uint64
	strictFailures  atomic.Uint64

	strictMu  sync.Mutex
	strictErr error // first codec rejection observed in strict mode

	methodMu sync.Mutex
	byMethod map[string]uint64
}

// Network must satisfy the substrate contract used by every protocol layer,
// including the asynchronous pipelining interface the TCP transport
// multiplexes natively.
var (
	_ transport.Transport    = (*Network)(nil)
	_ transport.Deregistrar  = (*Network)(nil)
	_ transport.AsyncCaller  = (*Network)(nil)
	_ transport.StreamOpener = (*Network)(nil)
)

type endpoint struct {
	handler Handler
	alive   atomic.Bool
}

// New constructs an empty network.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		cfg:      cfg,
		peers:    make(map[Addr]*endpoint),
		rng:      rand.New(rand.NewSource(seed)),
		byMethod: make(map[string]uint64),
	}
}

// chunkBytes returns the configured stream chunk size.
func (n *Network) chunkBytes() int {
	if n.cfg.ChunkBytes > 0 {
		return n.cfg.ChunkBytes
	}
	return transport.DefaultChunkBytes
}

// Register attaches a peer to the network. Re-registering an address that was
// previously killed revives it with the new handler (a free peer re-entering
// service); re-registering a live address is an error.
func (n *Network) Register(addr Addr, h Handler) error {
	if h == nil {
		return fmt.Errorf("simnet: nil handler for %s", addr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return transport.ErrClosed
	}
	if ep, ok := n.peers[addr]; ok && ep.alive.Load() {
		return fmt.Errorf("%w: %s", ErrDuplicate, addr)
	}
	ep := &endpoint{handler: h}
	ep.alive.Store(true)
	n.peers[addr] = ep
	return nil
}

// Kill fail-stops a peer. Subsequent calls to it block for DeadCallDelay and
// fail; it never observes further traffic. Killing an unknown or already
// dead peer is a no-op.
func (n *Network) Kill(addr Addr) {
	n.mu.RLock()
	ep := n.peers[addr]
	n.mu.RUnlock()
	if ep != nil {
		ep.alive.Store(false)
	}
}

// Deregister implements transport.Deregistrar as a fail-stop.
func (n *Network) Deregister(addr Addr) { n.Kill(addr) }

// Close fail-stops the whole network: every peer stops being served and
// further registrations fail.
func (n *Network) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	for _, ep := range n.peers {
		ep.alive.Store(false)
	}
	return nil
}

// Alive reports whether the peer is registered and not failed.
func (n *Network) Alive(addr Addr) bool {
	n.mu.RLock()
	ep := n.peers[addr]
	n.mu.RUnlock()
	return ep != nil && ep.alive.Load()
}

// Stats returns a snapshot of traffic counters.
func (n *Network) Stats() Stats {
	n.methodMu.Lock()
	by := make(map[string]uint64, len(n.byMethod))
	for k, v := range n.byMethod {
		by[k] = v
	}
	n.methodMu.Unlock()
	return Stats{
		Calls:           n.calls.Load(),
		Sends:           n.sends.Load(),
		Streams:         n.streams.Load(),
		Chunks:          n.chunks.Load(),
		ChunkDrops:      n.chunkDrops.Load(),
		SuspectDrops:    n.suspectDrops.Load(),
		PartitionDrops:  n.partitionDrops.Load(),
		DisconnectDrops: n.disconnectDrops.Load(),
		StreamResumes:   n.streamResumes.Load(),
		AuthRejects:     n.authRejects.Load(),
		Failures:        n.failures.Load(),
		StrictFailures:  n.strictFailures.Load(),
		ByMethod:        by,
	}
}

// StrictErr returns the first codec rejection observed in strict mode, or
// nil. Tests assert on it to prove every message type survives the wire.
func (n *Network) StrictErr() error {
	n.strictMu.Lock()
	defer n.strictMu.Unlock()
	return n.strictErr
}

// strictRoundTrip pushes v through the codec in strict mode, recording the
// first rejection. It also enforces transport.MaxFrameSize: a payload whose
// encoding could not cross the TCP transport in one frame fails here too, so
// in-process tests exercise the same boundary instead of being silently
// unbounded (size violations are counted as failures but kept out of
// StrictErr, which tracks codec registration bugs).
func (n *Network) strictRoundTrip(v any) (any, error) {
	if !n.cfg.StrictSerialization {
		return v, nil
	}
	b, err := n.encodeStrict(v)
	if err != nil {
		return nil, err
	}
	if len(b) > transport.MaxFrameSize {
		n.strictFailures.Add(1)
		return nil, fmt.Errorf("%w: %T of %d bytes", transport.ErrFrameTooLarge, v, len(b))
	}
	return n.decodeStrict(b)
}

// codecRoundTrip is strictRoundTrip without the frame-size bound: the round
// trip streamed transfers and their acknowledgments take (real transports
// chunk them, so size is no longer a frame concern).
func (n *Network) codecRoundTrip(v any) (any, error) {
	b, err := n.encodeStrict(v)
	if err != nil {
		return nil, err
	}
	return n.decodeStrict(b)
}

// encodeStrict encodes v, recording a codec rejection in StrictErr.
func (n *Network) encodeStrict(v any) ([]byte, error) {
	b, err := transport.Encode(v)
	if err != nil {
		n.strictFailures.Add(1)
		n.strictMu.Lock()
		if n.strictErr == nil {
			n.strictErr = err
		}
		n.strictMu.Unlock()
		return nil, err
	}
	return b, nil
}

// decodeStrict decodes b, recording a codec rejection in StrictErr.
func (n *Network) decodeStrict(b []byte) (any, error) {
	out, err := transport.Decode(b)
	if err != nil {
		n.strictFailures.Add(1)
		n.strictMu.Lock()
		if n.strictErr == nil {
			n.strictErr = err
		}
		n.strictMu.Unlock()
		return nil, err
	}
	return out, nil
}

func (n *Network) countMethod(method string) {
	n.methodMu.Lock()
	n.byMethod[method]++
	n.methodMu.Unlock()
}

func (n *Network) latency() time.Duration {
	if n.cfg.MaxLatency <= 0 {
		return 0
	}
	span := n.cfg.MaxLatency - n.cfg.MinLatency
	if span <= 0 {
		return n.cfg.MinLatency
	}
	n.rngMu.Lock()
	d := n.cfg.MinLatency + time.Duration(n.rng.Int63n(int64(span)))
	n.rngMu.Unlock()
	return d
}

// sleep waits for d or until ctx is done, returning ctx.Err in the latter case.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// lookup returns the endpoint if it is alive.
func (n *Network) lookup(addr Addr) (*endpoint, bool) {
	n.mu.RLock()
	ep := n.peers[addr]
	n.mu.RUnlock()
	if ep == nil || !ep.alive.Load() {
		return nil, false
	}
	return ep, true
}

// Call performs a synchronous request/response from one peer to another.
// The sending peer must be alive (a failed peer sends nothing). A call to a
// dead destination blocks for DeadCallDelay (modelling a timeout) and then
// reports ErrUnreachable. If the destination dies while processing, the
// response is lost and Call reports ErrUnreachable.
func (n *Network) Call(ctx context.Context, from, to Addr, method string, payload any) (any, error) {
	n.calls.Add(1)
	n.countMethod(method)
	if from != "" && !n.Alive(from) {
		n.failures.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrSenderDead, from)
	}
	payload, perr := n.strictRoundTrip(payload)
	if perr != nil {
		n.failures.Add(1)
		return nil, perr
	}
	if f := n.cfg.AuthFault; f != nil && f(from, to) {
		// Handshake refusal: answered promptly, never a fail-stop signal.
		n.authRejects.Add(1)
		n.failures.Add(1)
		return nil, fmt.Errorf("%w: %s", transport.ErrUnauthenticated, to)
	}
	if f := n.cfg.PartitionFault; f != nil && f(from, to) {
		// Severed link: refused immediately, both endpoints alive.
		n.partitionDrops.Add(1)
		n.failures.Add(1)
		return nil, fmt.Errorf("%w: %s (partitioned)", ErrUnreachable, to)
	}
	if err := sleep(ctx, n.latency()); err != nil {
		n.failures.Add(1)
		return nil, err
	}
	if f := n.cfg.SuspectFault; f != nil && f(from, to, method) {
		// Injected false positive: the destination is alive, but this caller
		// observes exactly what a fail-stop looks like.
		n.suspectDrops.Add(1)
		n.failures.Add(1)
		if err := sleep(ctx, n.cfg.DeadCallDelay); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s (suspect fault)", ErrUnreachable, to)
	}
	ep, ok := n.lookup(to)
	if !ok {
		n.failures.Add(1)
		if err := sleep(ctx, n.cfg.DeadCallDelay); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	resp, err := ep.handler(from, method, payload)
	if !ep.alive.Load() {
		// Destination died during processing; the response never made it out.
		n.failures.Add(1)
		if serr := sleep(ctx, n.cfg.DeadCallDelay); serr != nil {
			return nil, serr
		}
		return nil, fmt.Errorf("%w: %s (died mid-call)", ErrUnreachable, to)
	}
	if err != nil {
		return nil, err
	}
	// Responses round-trip the codec in strict mode but are NOT bounded by
	// the frame size: the TCP transport chunks oversized responses back
	// (kindRespChunk), so a small request answered with a whole range — a
	// replica pull, a rebalance — crosses both substrates identically. Only
	// the request direction of a plain call stays frame-bounded.
	if n.cfg.StrictSerialization {
		if resp, err = n.codecRoundTrip(resp); err != nil {
			n.failures.Add(1)
			return nil, err
		}
	}
	if lerr := sleep(ctx, n.latency()); lerr != nil {
		return nil, lerr
	}
	return resp, nil
}

// CallAsync implements transport.AsyncCaller: the same exchange as Call —
// sender-aliveness, strict-mode codec checks, latency sampling, fail-stop
// reporting — resolved in the background, so callers can hold many in-flight
// calls at once (including several to the same peer, which the handler then
// observes concurrently, exactly as on the multiplexed TCP transport).
func (n *Network) CallAsync(ctx context.Context, from, to Addr, method string, payload any) *transport.Pending {
	p := transport.NewPending()
	go func() { p.Resolve(n.Call(ctx, from, to, method, payload)) }()
	return p
}

// OpenStream implements transport.StreamOpener: one chunked transfer whose
// reassembled payload is delivered to the destination handler atomically at
// commit time. Chunks are staged sender-side (the in-process twin of the
// receiver staging a real transport does); per-chunk fault injection via
// Config.ChunkFault models a transfer dying mid-stream: the staged chunks
// are discarded and the destination handler never observes the transfer.
// The payload bytes are the wire form, so the transfer round-trips the codec
// even without StrictSerialization — exactly what crossing a process
// boundary produces; strict mode additionally round-trips the response.
// Propagation latency is charged once, at commit, like one Call round trip.
func (n *Network) OpenStream(_ context.Context, from, to Addr, method string) (transport.Stream, error) {
	n.streams.Add(1)
	n.countMethod(method)
	n.mu.RLock()
	closed := n.closed
	n.mu.RUnlock()
	if closed {
		return nil, transport.ErrClosed
	}
	if from != "" && !n.Alive(from) {
		n.failures.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrSenderDead, from)
	}
	if f := n.cfg.AuthFault; f != nil && f(from, to) {
		n.authRejects.Add(1)
		n.failures.Add(1)
		return nil, fmt.Errorf("%w: %s", transport.ErrUnauthenticated, to)
	}
	if f := n.cfg.PartitionFault; f != nil && f(from, to) {
		n.partitionDrops.Add(1)
		n.failures.Add(1)
		return nil, fmt.Errorf("%w: %s (partitioned)", ErrUnreachable, to)
	}
	if f := n.cfg.SuspectFault; f != nil && f(from, to, method) {
		// A destination this caller wrongly believes failed refuses its
		// streams exactly as it refuses its calls.
		n.suspectDrops.Add(1)
		n.failures.Add(1)
		if err := sleep(context.Background(), n.cfg.DeadCallDelay); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s (suspect fault)", ErrUnreachable, to)
	}
	return &simStream{n: n, from: from, to: to, method: method}, nil
}

// simStream is one in-flight chunked transfer on the simulated network.
type simStream struct {
	n      *Network
	from   Addr
	to     Addr
	method string
	chunks [][]byte
	failed error
	lost   bool // failure was a DisconnectFault connection loss: resumable
	done   bool
}

func (s *simStream) MaxChunk() int { return s.n.chunkBytes() }

// Chunk stages one sequence-numbered chunk, consulting the fault hook: a
// dropped chunk kills the whole transfer, exactly as a connection loss does
// on a real stream transport.
func (s *simStream) Chunk(ctx context.Context, data []byte) error {
	if s.done {
		return transport.ErrStreamAborted
	}
	if s.failed != nil {
		return s.failed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(data) > s.MaxChunk() {
		return fmt.Errorf("simnet: stream chunk of %d bytes exceeds chunk size %d", len(data), s.MaxChunk())
	}
	seq := len(s.chunks)
	s.n.chunks.Add(1)
	if f := s.n.cfg.DisconnectFault; f != nil && f(s.to, s.method, seq) {
		// Connection loss, not transfer failure: the chunks staged so far
		// survive and the transfer can Resume from its high-water mark.
		s.n.disconnectDrops.Add(1)
		s.n.failures.Add(1)
		s.lost = true
		s.failed = fmt.Errorf("%w: %s (connection lost at chunk %d of a %s stream)", ErrUnreachable, s.to, seq, s.method)
		return s.failed
	}
	if f := s.n.cfg.ChunkFault; f != nil && f(s.to, s.method, seq) {
		s.n.chunkDrops.Add(1)
		s.n.failures.Add(1)
		s.chunks = nil
		s.failed = fmt.Errorf("%w: %s (chunk %d of a %s stream dropped)", ErrUnreachable, s.to, seq, s.method)
		return s.failed
	}
	// Stage a copy: the transfer must not alias caller memory, just as real
	// chunk frames do not.
	c := make([]byte, len(data))
	copy(c, data)
	s.chunks = append(s.chunks, c)
	return nil
}

// Resume implements transport.Resumer: after a DisconnectFault connection
// loss the sender reconnects and asks for the receiver's high-water chunk
// mark. Because simnet stages chunks sender-side, the mark is simply the
// count staged so far — the dropped chunk is the only one retransmitted.
func (s *simStream) Resume(ctx context.Context) (int, error) {
	if s.done || !s.lost {
		// Only a connection loss is resumable; a transfer torn down by
		// ChunkFault (the receiver discarded its staging) is not.
		return 0, transport.ErrStreamAborted
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if _, ok := s.n.lookup(s.to); !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnreachable, s.to)
	}
	s.failed, s.lost = nil, false
	s.n.streamResumes.Add(1)
	return len(s.chunks), nil
}

// Commit delivers the reassembled transfer to the destination handler and
// returns its typed acknowledgment. The handler runs only here: a transfer
// that failed or was aborted earlier never touches the receiver.
func (s *simStream) Commit(ctx context.Context) (any, error) {
	if s.done {
		return nil, transport.ErrStreamAborted
	}
	s.done = true
	if s.failed != nil {
		return nil, s.failed
	}
	var body []byte
	for _, c := range s.chunks {
		body = append(body, c...)
	}
	s.chunks = nil
	if err := sleep(ctx, s.n.latency()); err != nil {
		s.n.failures.Add(1)
		return nil, err
	}
	ep, ok := s.n.lookup(s.to)
	if !ok {
		s.n.failures.Add(1)
		if err := sleep(ctx, s.n.cfg.DeadCallDelay); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, s.to)
	}
	payload, err := transport.Decode(body)
	if err != nil {
		s.n.failures.Add(1)
		return nil, err
	}
	resp, err := ep.handler(s.from, s.method, payload)
	if !ep.alive.Load() {
		s.n.failures.Add(1)
		if serr := sleep(ctx, s.n.cfg.DeadCallDelay); serr != nil {
			return nil, serr
		}
		return nil, fmt.Errorf("%w: %s (died mid-commit)", ErrUnreachable, s.to)
	}
	if err != nil {
		return nil, err
	}
	// The acknowledgment is not frame-bounded (real transports chunk it),
	// but in strict mode it still round-trips the codec.
	if s.n.cfg.StrictSerialization {
		if resp, err = s.n.codecRoundTrip(resp); err != nil {
			s.n.failures.Add(1)
			return nil, err
		}
	}
	if lerr := sleep(ctx, s.n.latency()); lerr != nil {
		return nil, lerr
	}
	return resp, nil
}

// Abort discards the staged transfer; the destination never sees it.
func (s *simStream) Abort(string) {
	s.done = true
	s.chunks = nil
}

// Send delivers a one-way message asynchronously: it returns immediately and
// the handler runs after the sampled propagation delay. Delivery failures are
// silent, as on a real network; strict-mode codec rejections are silent too
// but recorded in Stats.StrictFailures and StrictErr.
func (n *Network) Send(from, to Addr, method string, payload any) {
	n.sends.Add(1)
	n.countMethod(method)
	if from != "" && !n.Alive(from) {
		n.failures.Add(1)
		return
	}
	payload, perr := n.strictRoundTrip(payload)
	if perr != nil {
		n.failures.Add(1)
		return
	}
	go func() {
		if f := n.cfg.AuthFault; f != nil && f(from, to) {
			n.authRejects.Add(1)
			n.failures.Add(1)
			return
		}
		if f := n.cfg.PartitionFault; f != nil && f(from, to) {
			n.partitionDrops.Add(1)
			n.failures.Add(1)
			return
		}
		if d := n.latency(); d > 0 {
			time.Sleep(d)
		}
		if f := n.cfg.SuspectFault; f != nil && f(from, to, method) {
			n.suspectDrops.Add(1)
			n.failures.Add(1)
			return
		}
		ep, ok := n.lookup(to)
		if !ok {
			n.failures.Add(1)
			return
		}
		_, _ = ep.handler(from, method, payload)
	}()
}
