package simnet

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

type bigPayload struct{ Data []byte }

func init() { transport.RegisterMessage(bigPayload{}) }

// CallAsync must pipeline: many in-flight calls to the same peer overlap at
// the handler, exactly as on the multiplexed TCP transport.
func TestCallAsyncPipelinesToOnePeer(t *testing.T) {
	const depth = 8
	var inflight, peak atomic.Int64
	n := New(Config{DeadCallDelay: time.Millisecond, Seed: 1})
	slow := func(_ Addr, _ string, p any) (any, error) {
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		return p, nil
	}
	if err := n.Register("peer", slow); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("client", func(Addr, string, any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	pends := make([]*transport.Pending, depth)
	for i := range pends {
		pends[i] = n.CallAsync(context.Background(), "client", "peer", "m", i)
	}
	for i, p := range pends {
		got, err := p.Result()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got != i {
			t.Fatalf("call %d returned %v", i, got)
		}
	}
	if peak.Load() < 2 {
		t.Fatalf("handler concurrency peak %d, want >= 2 (async calls must overlap)", peak.Load())
	}
	if serialized := depth * 10 * time.Millisecond; time.Since(start) > serialized/2 {
		t.Fatalf("pipelined batch took %v, want well under the serialized %v", time.Since(start), serialized)
	}
}

// CallAsync keeps Call's fail-stop semantics: a call to a dead peer resolves
// with ErrUnreachable after the dead-call delay.
func TestCallAsyncToDeadPeer(t *testing.T) {
	n := New(Config{DeadCallDelay: time.Millisecond, Seed: 1})
	if err := n.Register("client", func(Addr, string, any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := n.CallAsync(context.Background(), "client", "ghost", "m", nil).Result(); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("async call to dead peer: err = %v, want ErrUnreachable", err)
	}
}

// Strict mode enforces the TCP frame size limit in-process: a state transfer
// whose encoding exceeds transport.MaxFrameSize fails with the typed error
// instead of being silently unbounded, and the rejection is counted without
// polluting StrictErr (which tracks codec registration bugs).
func TestStrictModeEnforcesFrameLimit(t *testing.T) {
	n := New(Config{DeadCallDelay: time.Millisecond, Seed: 1, StrictSerialization: true})
	ok := func(Addr, string, any) (any, error) { return true, nil }
	if err := n.Register("a", ok); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", ok); err != nil {
		t.Fatal(err)
	}

	_, err := n.Call(context.Background(), "a", "b", "ds.mergeIn", bigPayload{Data: make([]byte, transport.MaxFrameSize+1)})
	if !errors.Is(err, transport.ErrFrameTooLarge) {
		t.Fatalf("oversized strict call: err = %v, want ErrFrameTooLarge", err)
	}
	if errors.Is(err, ErrUnreachable) {
		t.Fatal("oversized payload reported ErrUnreachable: a payload bug must not read as a peer failure")
	}
	if serr := n.StrictErr(); serr != nil {
		t.Fatalf("StrictErr = %v, want nil (size violations are not codec bugs)", serr)
	}
	if st := n.Stats(); st.StrictFailures == 0 {
		t.Fatal("oversized payload not counted in StrictFailures")
	}

	// Within the limit the same shape crosses fine.
	if _, err := n.Call(context.Background(), "a", "b", "ds.mergeIn", bigPayload{Data: make([]byte, 1024)}); err != nil {
		t.Fatalf("normal strict call: %v", err)
	}
}
