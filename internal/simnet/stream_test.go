package simnet

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// chunkedPayload is a bulk-transfer-shaped payload for streaming tests.
type chunkedPayload struct{ Data []byte }

func init() { transport.RegisterMessage(chunkedPayload{}) }

func streamPattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*13 + i>>9)
	}
	return b
}

// Under strict serialization a bulk call larger than MaxFrameSize streams
// through the codec in chunks and arrives intact: the frame limit bounds
// individual frames, no longer whole state transfers.
func TestBulkCallStreamsOversizedPayloadStrict(t *testing.T) {
	if testing.Short() {
		t.Skip("moves >32 MiB through gob; exercised in the full suite")
	}
	n := New(Config{DeadCallDelay: time.Millisecond, Seed: 1, StrictSerialization: true})
	var got atomic.Value
	if err := n.Register("rcv", func(_ Addr, _ string, p any) (any, error) {
		got.Store(p)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("snd", func(Addr, string, any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}

	want := streamPattern(transport.MaxFrameSize + (1 << 20))
	resp, err := transport.CallBulk(n, context.Background(), "snd", "rcv", "rep.push", chunkedPayload{Data: want})
	if err != nil {
		t.Fatalf("bulk call: %v", err)
	}
	if ok, _ := resp.(bool); !ok {
		t.Fatalf("bulk response = %v, want true", resp)
	}
	cp, ok := got.Load().(chunkedPayload)
	if !ok {
		t.Fatalf("handler payload type %T", got.Load())
	}
	if !bytes.Equal(cp.Data, want) {
		t.Fatal("bulk payload corrupted in flight")
	}
	if serr := n.StrictErr(); serr != nil {
		t.Fatalf("StrictErr = %v", serr)
	}
	if st := n.Stats(); st.Streams != 1 || st.Chunks < 2 {
		t.Fatalf("stats = %+v, want 1 stream and >1 chunks", st)
	}
}

// Dropping the Nth chunk mid-transfer kills the whole transfer: the sender
// fails with the fail-stop signature and the receiver's handler never runs,
// so its state is untouched (the atomic-commit property).
func TestChunkFaultDropsTransferAtomically(t *testing.T) {
	var arm atomic.Bool
	cfg := Config{
		DeadCallDelay: time.Millisecond,
		Seed:          1,
		ChunkBytes:    1024,
		ChunkFault: func(_ Addr, method string, seq int) bool {
			return arm.Load() && method == "rep.push" && seq == 2
		},
	}
	n := New(cfg)
	var handled atomic.Int64
	if err := n.Register("rcv", func(_ Addr, _ string, p any) (any, error) {
		handled.Add(1)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("snd", func(Addr, string, any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}

	payload := chunkedPayload{Data: streamPattern(8 * 1024)} // several chunks at 1 KiB each
	arm.Store(true)
	_, err := transport.CallBulk(n, context.Background(), "snd", "rcv", "rep.push", payload)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dropped-chunk transfer: err = %v, want ErrUnreachable", err)
	}
	if handled.Load() != 0 {
		t.Fatal("handler ran despite the dropped chunk: transfer was not atomic")
	}
	if st := n.Stats(); st.ChunkDrops != 1 {
		t.Fatalf("ChunkDrops = %d, want 1", st.ChunkDrops)
	}

	// With the fault disarmed the identical transfer commits.
	arm.Store(false)
	if _, err := transport.CallBulk(n, context.Background(), "snd", "rcv", "rep.push", payload); err != nil {
		t.Fatalf("transfer after disarming fault: %v", err)
	}
	if handled.Load() != 1 {
		t.Fatalf("handler invocations = %d, want 1", handled.Load())
	}
}

// Streams keep Call's fail-stop rules: a dead sender cannot open one, and a
// transfer committed at a dead receiver reports unreachable after the
// dead-call delay without touching any handler.
func TestStreamFailStopSemantics(t *testing.T) {
	n := New(Config{DeadCallDelay: time.Millisecond, Seed: 1})
	if err := n.Register("alive", func(Addr, string, any) (any, error) { return true, nil }); err != nil {
		t.Fatal(err)
	}

	if _, err := n.OpenStream(context.Background(), "ghost", "alive", "m"); !errors.Is(err, ErrSenderDead) {
		t.Fatalf("open from dead sender: err = %v, want ErrSenderDead", err)
	}

	_, err := transport.CallBulk(n, context.Background(), "alive", "ghost", "m", chunkedPayload{Data: []byte("x")})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("commit to dead receiver: err = %v, want ErrUnreachable", err)
	}
}
