package simnet

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMuxDispatch(t *testing.T) {
	m := NewMux()
	m.Handle("a", func(_ Addr, _ string, p any) (any, error) { return fmt.Sprintf("a:%v", p), nil })
	m.Handle("b", func(_ Addr, _ string, p any) (any, error) { return fmt.Sprintf("b:%v", p), nil })

	got, err := m.Dispatch("x", "a", 1)
	if err != nil || got != "a:1" {
		t.Fatalf("dispatch a = %v, %v", got, err)
	}
	got, err = m.Dispatch("x", "b", 2)
	if err != nil || got != "b:2" {
		t.Fatalf("dispatch b = %v, %v", got, err)
	}
}

func TestMuxUnknownMethod(t *testing.T) {
	m := NewMux()
	if _, err := m.Dispatch("x", "nope", nil); err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v, want no-handler error", err)
	}
}

func TestMuxReplaceAndRemove(t *testing.T) {
	m := NewMux()
	m.Handle("a", func(_ Addr, _ string, _ any) (any, error) { return 1, nil })
	m.Handle("a", func(_ Addr, _ string, _ any) (any, error) { return 2, nil })
	got, _ := m.Dispatch("x", "a", nil)
	if got != 2 {
		t.Fatalf("replacement not effective: %v", got)
	}
	m.Handle("a", nil)
	if _, err := m.Dispatch("x", "a", nil); err == nil {
		t.Fatal("removed handler still dispatches")
	}
}

func TestMuxOverNetwork(t *testing.T) {
	n := New(Config{DeadCallDelay: time.Millisecond, Seed: 1})
	m := NewMux()
	m.Handle("ring.ping", func(_ Addr, _ string, _ any) (any, error) { return "pong", nil })
	m.Handle("ds.insert", func(_ Addr, _ string, p any) (any, error) { return p, nil })
	if err := n.Register("peer", m.Dispatch); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("client", func(Addr, string, any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if got, err := n.Call(ctx, "client", "peer", "ring.ping", nil); err != nil || got != "pong" {
		t.Fatalf("ping via mux = %v, %v", got, err)
	}
	if got, err := n.Call(ctx, "client", "peer", "ds.insert", 42); err != nil || got != 42 {
		t.Fatalf("insert via mux = %v, %v", got, err)
	}
}

func TestMuxConcurrent(t *testing.T) {
	m := NewMux()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", g)
			for i := 0; i < 200; i++ {
				m.Handle(name, func(_ Addr, _ string, _ any) (any, error) { return g, nil })
				if got, err := m.Dispatch("x", name, nil); err != nil || got != g {
					t.Errorf("dispatch %s = %v, %v", name, got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
