package simnet

import (
	"context"
	"testing"
	"time"

	"repro/internal/transport"
)

type strictRegistered struct{ N int }

func init() { transport.RegisterMessage(strictRegistered{}) }

// An unregistered payload type must fail a strict-mode Call loudly instead
// of slipping through by reference — the whole point of StrictSerialization.
func TestStrictSerializationCatchesUnregisteredPayload(t *testing.T) {
	type unregisteredPayload struct{ N int }
	n := New(Config{DeadCallDelay: time.Millisecond, Seed: 1, StrictSerialization: true})
	echo := func(_ Addr, _ string, p any) (any, error) { return p, nil }
	if err := n.Register("a", echo); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echo); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := n.Call(ctx, "a", "b", "m", unregisteredPayload{N: 7}); err == nil {
		t.Fatal("strict Call with unregistered payload succeeded")
	}
	if err := n.StrictErr(); err == nil {
		t.Fatal("StrictErr not recorded")
	}
	if st := n.Stats(); st.StrictFailures == 0 {
		t.Fatal("StrictFailures not counted")
	}

	// A registered payload keeps working and arrives as a deep copy.
	got, err := n.Call(ctx, "a", "b", "m", strictRegistered{N: 3})
	if err != nil {
		t.Fatalf("strict Call with registered payload: %v", err)
	}
	if v, ok := got.(strictRegistered); !ok || v.N != 3 {
		t.Fatalf("got %#v", got)
	}
}

// A strict-mode Send with an unencodable payload is dropped silently (Send
// failures are always silent) but recorded, so tests can assert on it.
func TestStrictSerializationRecordsSendRejections(t *testing.T) {
	type unregisteredOneWay struct{ N int }
	n := New(Config{DeadCallDelay: time.Millisecond, Seed: 1, StrictSerialization: true})
	delivered := make(chan any, 1)
	if err := n.Register("a", func(_ Addr, _ string, p any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", func(_ Addr, _ string, p any) (any, error) {
		delivered <- p
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}

	n.Send("a", "b", "m", unregisteredOneWay{N: 1})
	select {
	case p := <-delivered:
		t.Fatalf("unencodable one-way payload delivered: %#v", p)
	case <-time.After(20 * time.Millisecond):
	}
	if err := n.StrictErr(); err == nil {
		t.Fatal("StrictErr not recorded for rejected Send")
	}

	n.Send("a", "b", "m", strictRegistered{N: 2})
	select {
	case p := <-delivered:
		if v, ok := p.(strictRegistered); !ok || v.N != 2 {
			t.Fatalf("delivered %#v", p)
		}
	case <-time.After(time.Second):
		t.Fatal("registered one-way payload never delivered")
	}
}

// By-reference sharing: without strict mode the receiver can mutate the
// sender's value through a shared slice; with strict mode it cannot. This is
// the class of bug the codec boundary exists to flush out.
func TestStrictSerializationBreaksSharedState(t *testing.T) {
	transport.RegisterMessage([]int(nil))
	for _, strict := range []bool{false, true} {
		n := New(Config{DeadCallDelay: time.Millisecond, Seed: 1, StrictSerialization: strict})
		if err := n.Register("a", func(Addr, string, any) (any, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
		if err := n.Register("b", func(_ Addr, _ string, p any) (any, error) {
			p.([]int)[0] = 42 // hostile mutation of the received payload
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
		payload := []int{1}
		if _, err := n.Call(context.Background(), "a", "b", "m", payload); err != nil {
			t.Fatal(err)
		}
		mutated := payload[0] == 42
		if strict && mutated {
			t.Fatal("strict mode delivered the payload by reference")
		}
		if !strict && !mutated {
			t.Fatal("sanity: non-strict mode should share by reference")
		}
	}
}
